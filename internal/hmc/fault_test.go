package hmc

import (
	"testing"

	"charonsim/internal/fault"
	"charonsim/internal/sim"
)

// faultyLink builds a link whose every packet takes at least one CRC error.
func faultyLink(t *testing.T, cfg fault.Config) *Link {
	t.Helper()
	inj := fault.New(cfg)
	if inj == nil {
		t.Fatal("injector unexpectedly disabled")
	}
	return NewLinkFault(sim.NewEngine(), DefaultLinkConfig(), inj, "hmc/hostlink")
}

func TestLinkRetryAccounting(t *testing.T) {
	l := faultyLink(t, fault.Config{LinkCRCRate: 0.5, Seed: 3})
	const n, size = 400, 80
	var last sim.Time
	for i := 0; i < n; i++ {
		last = l.TransferAt(0, DirDown, size)
	}
	if l.Retries == 0 {
		t.Fatal("50% CRC rate produced zero retries over 400 packets")
	}
	// Stats must hold exactly the logical packets: retransmissions are
	// transport noise, not delivered payload.
	if l.Stats.Writes != n || l.Stats.WriteBytes != n*size {
		t.Fatalf("logical stats = %d pkts / %d bytes, want %d / %d",
			l.Stats.Writes, l.Stats.WriteBytes, n, n*size)
	}
	if l.RetransBytes != l.Retries*size {
		t.Fatalf("RetransBytes = %d, want Retries*size = %d", l.RetransBytes, l.Retries*size)
	}
	// Occupancy covers logical + retransmitted serialization and never
	// exceeds the horizon; utilization stays a valid fraction.
	wantBusy := l.serTime(size) * sim.Time(n+int(l.Retries))
	if l.Busy(DirDown) != wantBusy {
		t.Fatalf("lane busy = %v, want %v", l.Busy(DirDown), wantBusy)
	}
	if u := l.Utilization(DirDown, last); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v, want (0, 1]", u)
	}
	if l.RetryDelay == 0 {
		t.Fatal("retries charged no delivery delay")
	}
}

func TestLinkRetrySlowsDelivery(t *testing.T) {
	healthy := NewLink(sim.NewEngine(), DefaultLinkConfig())
	faulty := faultyLink(t, fault.Config{LinkCRCRate: 0.9, Seed: 1})
	var h, f sim.Time
	for i := 0; i < 100; i++ {
		h = healthy.TransferAt(0, DirDown, 80)
		f = faulty.TransferAt(0, DirDown, 80)
	}
	if f <= h {
		t.Fatalf("90%% CRC rate delivery %v not slower than healthy %v", f, h)
	}
}

func TestLinkRetryBudgetGiveup(t *testing.T) {
	// Near-certain CRC errors with a budget of 1: most packets give up.
	l := faultyLink(t, fault.Config{LinkCRCRate: 0.99, RetryBudget: 1, Seed: 5})
	for i := 0; i < 50; i++ {
		l.TransferAt(0, DirUp, 80)
	}
	if l.RetryGiveups == 0 {
		t.Fatal("budget of 1 at 99% error rate never gave up")
	}
	if l.Retries > 50 { // at most one retry per packet before giving up
		t.Fatalf("Retries = %d exceeds one per packet", l.Retries)
	}
}

func TestLinkRetryDeterminism(t *testing.T) {
	run := func(seed int64) []sim.Time {
		l := faultyLink(t, fault.Config{LinkCRCRate: 0.3, Seed: seed})
		out := make([]sim.Time, 64)
		for i := range out {
			out[i] = l.TransferAt(0, DirDown, 128)
		}
		return out
	}
	a, b, c := run(9), run(9), run(10)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at packet %d", i)
		}
		same = same && a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical delivery schedules")
	}
}

func TestSystemFaultStatsAggregate(t *testing.T) {
	inj := fault.New(fault.Config{Rate: 0.2, HardBankRate: 0.2, Seed: 4})
	eng := sim.NewEngine()
	s := NewSystemFault(eng, testCubeShift, Star, inj)
	for i := 0; i < 200; i++ {
		s.HostAccessAt(0, 0, uint64(i)*64, 64) // memsys.Read == 0
	}
	retries, _, ecc, remapped := s.FaultStats()
	if retries == 0 {
		t.Fatal("no link retries at 20% CRC rate")
	}
	if ecc == 0 {
		t.Fatal("no ECC corrections at 5% ECC rate over 200 reads")
	}
	if remapped == 0 {
		t.Fatal("no banks remapped at 20% hard-fault rate over 1024 banks")
	}
}
