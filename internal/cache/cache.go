// Package cache implements a set-associative, write-back, write-allocate
// cache model with LRU replacement. It is used both for the host's
// L1/L2/L3 hierarchy (Table 2) and for Charon's dedicated bitmap cache
// (8 KB, 8-way, 32 B blocks, Section 4.5). The model tracks tags and dirty
// bits only; data lives in the functional heap arena.
package cache

import (
	"fmt"

	"charonsim/internal/metrics"
	"charonsim/internal/sim"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  uint64
	Ways       int
	BlockSize  uint64
	HitLatency sim.Time
}

// L1DConfig returns Table 2's L1 data cache: 32 KB, 8-way, 4 cycles at 2.67 GHz.
func L1DConfig() Config {
	return Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, BlockSize: 64, HitLatency: 4 * 375 * sim.Picosecond}
}

// L2Config returns Table 2's L2: 256 KB, 8-way, 12 cycles.
func L2Config() Config {
	return Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, BlockSize: 64, HitLatency: 12 * 375 * sim.Picosecond}
}

// L3Config returns Table 2's shared L3: 8 MB, 16-way, 28 cycles.
func L3Config() Config {
	return Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, BlockSize: 64, HitLatency: 28 * 375 * sim.Picosecond}
}

// ScaledL1DConfig..ScaledL3Config are capacity-scaled variants of the host
// hierarchy used by the experiment platforms: the reproduction's heaps are
// scaled down ~512x from the paper's 4-12 GB, so full-size caches would
// hold metadata (mark bitmaps, card tables) that is emphatically
// *uncacheable* at paper scale. Scaling capacities ~32x (keeping latencies
// and associativities) restores the paper's cache:heap proportions within
// a small factor (see DESIGN.md).

// ScaledL1DConfig returns the scaled L1D: 4 KB.
func ScaledL1DConfig() Config {
	return Config{Name: "L1D", SizeBytes: 4 << 10, Ways: 8, BlockSize: 64, HitLatency: 4 * 375 * sim.Picosecond}
}

// ScaledL2Config returns the scaled L2: 16 KB.
func ScaledL2Config() Config {
	return Config{Name: "L2", SizeBytes: 16 << 10, Ways: 8, BlockSize: 64, HitLatency: 12 * 375 * sim.Picosecond}
}

// ScaledL3Config returns the scaled shared L3: 256 KB.
func ScaledL3Config() Config {
	return Config{Name: "L3", SizeBytes: 256 << 10, Ways: 16, BlockSize: 64, HitLatency: 28 * 375 * sim.Picosecond}
}

// BitmapCacheConfig returns Charon's bitmap cache from Section 4.5:
// 8 KB, 8-way, 32 B blocks. Hit latency of one HMC logic-layer cycle.
func BitmapCacheConfig() Config {
	return Config{Name: "BitmapCache", SizeBytes: 8 << 10, Ways: 8, BlockSize: 32, HitLatency: 1600 * sim.Picosecond}
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	Flushes    uint64
}

// HitRate returns hits/(hits+misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Result reports the outcome of one access.
type Result struct {
	Hit bool
	// Eviction of a dirty line that must be written back to memory.
	Writeback     bool
	WritebackAddr uint64
}

// Cache is a single cache level. Not safe for concurrent use; the
// simulator is single-threaded.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets uint64
	tick  uint64

	// Shift/mask fast path for the index math: every standard geometry
	// (Table 2, the scaled variants, the bitmap cache) has power-of-two
	// block size and set count, and the divisions in index() otherwise
	// dominate the access cost. Division fallback when not pow2.
	pow2       bool
	blockShift uint
	setShift   uint
	setMask    uint64

	Stats Stats
}

// log2 returns the exponent of a power of two, or ok=false.
func log2(v uint64) (uint, bool) {
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s, true
}

// New builds a cache from cfg. Panics on a geometry that doesn't divide
// evenly, since that is a configuration bug.
func New(cfg Config) *Cache {
	if cfg.BlockSize == 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	blocks := cfg.SizeBytes / cfg.BlockSize
	nsets := blocks / uint64(cfg.Ways)
	if nsets == 0 || blocks%uint64(cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: %d blocks not divisible into %d ways", cfg.Name, blocks, cfg.Ways))
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*uint64(cfg.Ways))
	for i := range sets {
		sets[i] = backing[uint64(i)*uint64(cfg.Ways) : (uint64(i)+1)*uint64(cfg.Ways)]
	}
	c := &Cache{cfg: cfg, sets: sets, nsets: nsets}
	bs, okB := log2(cfg.BlockSize)
	ss, okS := log2(nsets)
	if okB && okS {
		c.pow2, c.blockShift, c.setShift, c.setMask = true, bs, ss, nsets-1
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Collect publishes the cache's event counters into reg under prefix.
// No-op when reg is disabled.
func (c *Cache) Collect(reg *metrics.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.AddUint(prefix+"/hits", c.Stats.Hits)
	reg.AddUint(prefix+"/misses", c.Stats.Misses)
	reg.AddUint(prefix+"/writebacks", c.Stats.Writebacks)
	reg.AddUint(prefix+"/flushes", c.Stats.Flushes)
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	if c.pow2 {
		blk := addr >> c.blockShift
		return blk & c.setMask, blk >> c.setShift
	}
	blk := addr / c.cfg.BlockSize
	return blk % c.nsets, blk / c.nsets
}

// blockAddr reconstructs the base address of a cached line.
func (c *Cache) blockAddr(set, tag uint64) uint64 {
	if c.pow2 {
		return (tag<<c.setShift | set) << c.blockShift
	}
	return (tag*c.nsets + set) * c.cfg.BlockSize
}

// Access looks up addr, allocating on miss (write-allocate) and marking
// dirty on writes. It touches exactly one block; callers split larger
// accesses with memsys.SplitBursts at the block size.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	lines := c.sets[set]
	c.tick++

	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.tick
			if write {
				lines[i].dirty = true
			}
			c.Stats.Hits++
			return Result{Hit: true}
		}
	}
	c.Stats.Misses++

	// Choose a victim: first invalid way, else least recently used.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := Result{}
	if lines[victim].valid && lines[victim].dirty {
		res.Writeback = true
		res.WritebackAddr = c.blockAddr(set, lines[victim].tag)
		c.Stats.Writebacks++
	}
	lines[victim] = line{valid: true, dirty: write, tag: tag, lru: c.tick}
	return res
}

// Contains reports whether addr's block is cached (no LRU update).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's block if present, returning whether it was dirty
// (the caller models the resulting writeback). This is what a clflush from
// a Charon processing unit does to the host hierarchy (Section 4.1).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			dirty = lines[i].dirty
			lines[i] = line{}
			return true, dirty
		}
	}
	return false, false
}

// Flush empties the whole cache and returns the number of dirty lines that
// would be written back. Used for the GC-start bulk flush (Section 4.6:
// "flushing 24MB LLC takes only 300µs with 80GB/sec HMC bandwidth").
func (c *Cache) Flush() (dirty int) {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				dirty++
			}
			c.sets[s][i] = line{}
		}
	}
	c.Stats.Flushes++
	return dirty
}

// DirtyLines returns the addresses of all dirty blocks (for write-back
// traffic accounting without flushing).
func (c *Cache) DirtyLines() []uint64 { return c.AppendDirtyLines(nil) }

// AppendDirtyLines appends the addresses of all dirty blocks to dst and
// returns the extended slice, letting flush loops reuse one scratch
// buffer instead of allocating per flush.
func (c *Cache) AppendDirtyLines(dst []uint64) []uint64 {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				dst = append(dst, c.blockAddr(uint64(s), c.sets[s][i].tag))
			}
		}
	}
	return dst
}

// Hierarchy chains cache levels in front of a memory latency model. It
// answers the question the CPU timing model asks: "how long until this
// load's data arrives, and how many memory requests does it generate?".
type Hierarchy struct {
	Levels []*Cache

	// wb is the reusable backing for LookupResult.Writebacks: memory
	// writebacks are rare (last-level dirty victims only) but the append
	// in the common Access path must not allocate per call.
	wb []uint64
}

// NewHostHierarchy builds Table 2's L1D/L2/L3 stack.
func NewHostHierarchy() *Hierarchy {
	return &Hierarchy{Levels: []*Cache{New(L1DConfig()), New(L2Config()), New(L3Config())}}
}

// LookupResult describes where an access hit.
type LookupResult struct {
	// Level is the index of the hitting level, or len(Levels) for memory.
	Level int
	// Latency is the cumulative lookup latency of the traversed levels.
	Latency sim.Time
	// MemoryAccess is true when main memory must be accessed.
	MemoryAccess bool
	// Writebacks lists dirty-victim addresses to write to memory.
	Writebacks []uint64
}

// Access walks the hierarchy for one block access. Stores dirty the line
// only in the first level; dirty victims cascade one level down, and only
// last-level victims become memory writebacks.
//
// The returned Writebacks slice aliases hierarchy-owned scratch and is
// valid until the next Access call.
func (h *Hierarchy) Access(addr uint64, write bool) LookupResult {
	res := LookupResult{Writebacks: h.wb[:0]}
	for i, c := range h.Levels {
		res.Latency += c.Config().HitLatency
		r := c.Access(addr, write && i == 0)
		if r.Writeback {
			h.writeback(i+1, r.WritebackAddr, &res)
		}
		if r.Hit {
			res.Level = i
			h.wb = res.Writebacks[:0]
			return res
		}
	}
	res.Level = len(h.Levels)
	res.MemoryAccess = true
	h.wb = res.Writebacks[:0]
	return res
}

// writeback installs a dirty victim into level i (cascading further
// victims), or records a memory writeback past the last level.
func (h *Hierarchy) writeback(i int, addr uint64, res *LookupResult) {
	for ; i < len(h.Levels); i++ {
		r := h.Levels[i].Access(addr, true)
		if !r.Writeback {
			return
		}
		addr = r.WritebackAddr
	}
	res.Writebacks = append(res.Writebacks, addr)
}

// FlushAll flushes every level, returning total dirty lines.
func (h *Hierarchy) FlushAll() int {
	dirty := 0
	for _, c := range h.Levels {
		dirty += c.Flush()
	}
	return dirty
}

// Invalidate performs a clflush-style probe through every level, returning
// whether any level held the line dirty.
func (h *Hierarchy) Invalidate(addr uint64) (present, dirty bool) {
	for _, c := range h.Levels {
		p, d := c.Invalidate(addr)
		present = present || p
		dirty = dirty || d
	}
	return present, dirty
}
