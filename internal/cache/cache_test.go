package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", SizeBytes: 1024, Ways: 2, BlockSize: 64})
	// 16 blocks, 2 ways => 8 sets
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(0, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(32, false); !r.Hit {
		t.Fatal("same-block offset missed")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 8 sets * 64B blocks: addresses 0, 512, 1024 share set 0
	c.Access(0, false)
	c.Access(512, false)
	c.Access(0, false)    // touch 0 so 512 is LRU
	c.Access(1024, false) // evicts 512
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(512) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(1024) {
		t.Fatal("new line not present")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false) // set 0 full; victim is 0 (LRU) and dirty
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Fatalf("expected writeback of addr 0, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(512, false)
	if r := c.Access(1024, false); r.Writeback {
		t.Fatalf("clean eviction produced writeback: %+v", r)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0, true)
	p, d := c.Invalidate(0)
	if !p || !d {
		t.Fatalf("invalidate: present=%v dirty=%v", p, d)
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidate")
	}
	p, _ = c.Invalidate(0)
	if p {
		t.Fatal("invalidate of absent line reported present")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	if n := c.Flush(); n != 2 {
		t.Fatalf("flush returned %d dirty, want 2", n)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("lines survived flush")
	}
	if c.Stats.Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestDirtyLines(t *testing.T) {
	c := small()
	c.Access(0, true)
	c.Access(64, false)
	got := c.DirtyLines()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("dirty lines %v", got)
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	// Property: any cached address is reported back as its block base.
	c := New(Config{Name: "q", SizeBytes: 4096, Ways: 4, BlockSize: 32})
	f := func(a uint32) bool {
		addr := uint64(a)
		c.Access(addr, true)
		base := addr / 32 * 32
		return c.Contains(base) && c.Contains(base+31)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateTracksLocality(t *testing.T) {
	// Bitmap-cache scenario from Section 4.5: repeated overlapping range
	// scans over a small bitmap region should exceed 90% hit rate.
	c := New(BitmapCacheConfig())
	base := uint64(1 << 20)
	for iter := 0; iter < 50; iter++ {
		start := base + uint64(iter)*32 // ranges overlap heavily
		for a := start; a < start+4096; a += 8 {
			c.Access(a, false)
		}
	}
	if hr := c.Stats.HitRate(); hr < 0.90 {
		t.Fatalf("bitmap cache hit rate %.3f, want >= 0.90", hr)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHostHierarchy()
	r := h.Access(4096, false)
	if !r.MemoryAccess || r.Level != 3 {
		t.Fatalf("cold access should go to memory: %+v", r)
	}
	r = h.Access(4096, false)
	if r.Level != 0 || r.MemoryAccess {
		t.Fatalf("warm access should hit L1: %+v", r)
	}
	// Latency for the L1 hit must be below the cold path's.
	cold := h.Access(1<<30, false)
	if r.Latency >= cold.Latency {
		t.Fatalf("L1 hit latency %v not below miss path %v", r.Latency, cold.Latency)
	}
}

func TestHierarchyInclusionOnMiss(t *testing.T) {
	h := NewHostHierarchy()
	h.Access(64, true)
	// After the fill, all levels hold the line; L2/L3 were marked by the
	// allocate-on-miss walk.
	for i, c := range h.Levels {
		if !c.Contains(64) {
			t.Fatalf("level %d missing line after fill", i)
		}
	}
	if n := h.FlushAll(); n == 0 {
		t.Fatal("flush of dirty hierarchy returned 0")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := NewHostHierarchy()
	h.Access(64, true)
	p, d := h.Invalidate(64)
	if !p || !d {
		t.Fatalf("hierarchy invalidate: present=%v dirty=%v", p, d)
	}
	r := h.Access(64, false)
	if !r.MemoryAccess {
		t.Fatal("line survived hierarchy invalidate")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad geometry")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, Ways: 3, BlockSize: 0})
}

func TestTable2Configs(t *testing.T) {
	for _, tc := range []struct {
		cfg    Config
		blocks uint64
	}{
		{L1DConfig(), 512},
		{L2Config(), 4096},
		{L3Config(), 131072},
		{BitmapCacheConfig(), 256},
	} {
		c := New(tc.cfg)
		if got := tc.cfg.SizeBytes / tc.cfg.BlockSize; got != tc.blocks {
			t.Fatalf("%s: %d blocks, want %d", tc.cfg.Name, got, tc.blocks)
		}
		_ = c
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(L2Config())
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%100000)*64, i%3 == 0)
	}
}
