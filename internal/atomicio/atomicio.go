// Package atomicio provides crash-safe file output: a writer that lands
// its bytes in a same-directory temp file and renames it into place only
// after a successful write and sync. A process killed mid-write — the
// failure mode of an interrupted sweep flushing metrics, traces, or
// checkpoint entries — leaves either the previous complete file or no
// file, never a truncated one.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with whatever write produces. The
// temp file lives in path's directory so the final rename stays on one
// filesystem (rename is only atomic within a filesystem). If write or any
// I/O step fails, the target is left untouched and the temp file removed.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	// Sync before rename: otherwise a crash shortly after could publish a
	// file whose data blocks never reached the disk.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: publish %s: %w", path, err)
	}
	return nil
}

// WriteFileBytes is WriteFile for a ready byte slice.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
