// Package atomicio provides crash-safe file output: a writer that lands
// its bytes in a same-directory temp file and renames it into place only
// after a successful write and sync. A process killed mid-write — the
// failure mode of an interrupted sweep flushing metrics, traces, or
// checkpoint entries — leaves either the previous complete file or no
// file, never a truncated one.
//
// All writes go through an FS, a small seam over the handful of syscalls
// the protocol needs. Production code uses the real filesystem (the nil
// default); the fault layer's fault.FS wraps it to inject ENOSPC, short
// writes, fsync errors, and torn renames, so the persistence stack's
// failure paths are testable without a failing disk.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the write protocol touches.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations WriteFile performs, in protocol
// order: CreateTemp, File.Write*, File.Sync, File.Close, Rename, SyncDir
// (with Remove cleaning up on any failure). A nil FS is the real
// filesystem.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making a preceding rename in it durable.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a sync error still
	// means durability is not guaranteed, so it propagates.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFile atomically replaces path with whatever write produces. The
// temp file lives in path's directory so the final rename stays on one
// filesystem (rename is only atomic within a filesystem). If write or any
// I/O step fails, the target is left untouched and the temp file removed.
func WriteFile(path string, write func(w io.Writer) error) error {
	return WriteFileFS(nil, path, write)
}

// WriteFileBytes is WriteFile for a ready byte slice.
func WriteFileBytes(path string, data []byte) error {
	return WriteFileBytesFS(nil, path, data)
}

// WriteFileFS is WriteFile over an explicit FS (nil = real filesystem).
// After the rename publishes the file, the parent directory is fsynced so
// the publish itself survives a crash — a caller that saw WriteFileFS
// return nil may rely on the entry being present after power loss.
func WriteFileFS(fsys FS, path string, write func(w io.Writer) error) (err error) {
	if fsys == nil {
		fsys = osFS{}
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	// Sync before rename: otherwise a crash shortly after could publish a
	// file whose data blocks never reached the disk.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return fmt.Errorf("atomicio: publish %s: %w", path, err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		// The rename happened but its durability is not guaranteed; the
		// file is left in place (it is complete and checksummed by the
		// layers above) and the caller learns the write may not survive a
		// crash.
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	return nil
}

// WriteFileBytesFS is WriteFileFS for a ready byte slice.
func WriteFileBytesFS(fsys FS, path string, data []byte) error {
	return WriteFileFS(fsys, path, func(w io.Writer) error {
		n, err := w.Write(data)
		if err == nil && n < len(data) {
			err = io.ErrShortWrite
		}
		return err
	})
}
