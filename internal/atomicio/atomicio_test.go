package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read %q, %v; want v2", got, err)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("leftover temp files: %v", names)
	}
}

// TestWriteFileMidWriteFailure simulates a write that dies halfway through
// (the moral equivalent of a SIGKILL mid-flush): the previous complete
// file must survive untouched and no temp debris may remain.
func TestWriteFileMidWriteFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	if err := WriteFileBytes(path, []byte(`{"complete":true}`)); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	err := WriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, `{"compl`); err != nil { // partial write...
			return err
		}
		return boom // ...then the failure
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != `{"complete":true}` {
		t.Fatalf("target corrupted: %q, %v", got, rerr)
	}
	for _, name := range listDir(t, dir) {
		if strings.Contains(name, ".tmp-") {
			t.Fatalf("temp file %s left behind", name)
		}
	}
}

func TestWriteFileNewFileFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	err := WriteFile(path, func(io.Writer) error { return errors.New("nope") })
	if err == nil {
		t.Fatal("want error")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("failed write published a file: %v", serr)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("debris: %v", names)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	if err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("want error for missing directory")
	}
}

// shortWriteFile truncates every write to one byte, modelling a disk that
// fills mid-write.
type shortWriteFile struct {
	File
}

func (f shortWriteFile) Write(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return f.File.Write(p)
}

// hookFS overrides selected FS operations over the real filesystem.
type hookFS struct {
	shortWrites bool
	syncDirErr  error
}

func (h *hookFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	if h.shortWrites {
		return shortWriteFile{f}, nil
	}
	return f, nil
}
func (h *hookFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (h *hookFS) Remove(name string) error             { return os.Remove(name) }
func (h *hookFS) SyncDir(dir string) error             { return h.syncDirErr }

// TestWriteFileBytesFSDetectsShortWrite pins the ENOSPC-shaped failure
// mode: a writer that silently lands fewer bytes than asked must fail the
// write (io.ErrShortWrite), leave no debris, and never publish.
func TestWriteFileBytesFSDetectsShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	err := WriteFileBytesFS(&hookFS{shortWrites: true}, path, []byte("more than one byte"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("short write published a file: %v", serr)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("debris: %v", names)
	}
}

// TestWriteFileFSSyncDirFailureKeepsCompleteFile: when the rename landed
// but the directory fsync failed, the caller must see the error (the
// publish may not survive a crash) while the file on disk — complete and
// checksummed by the layers above — stays in place.
func TestWriteFileFSSyncDirFailureKeepsCompleteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	boom := errors.New("journal: dir sync lost")
	err := WriteFileBytesFS(&hookFS{syncDirErr: boom}, path, []byte("payload"))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected sync-dir failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "payload" {
		t.Fatalf("published file = %q, %v; want complete payload", got, rerr)
	}
}

// TestWriteFileNilFSIsRealFilesystem: the nil FS default must behave
// exactly like WriteFile.
func TestWriteFileNilFSIsRealFilesystem(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileBytesFS(nil, path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "x" {
		t.Fatalf("read %q, %v", got, err)
	}
}
