//go:build !race

package charonsim

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
