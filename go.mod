module charonsim

go 1.22
