# Developer entry points. Everything here is plain go tool invocations;
# CI (.github/workflows/ci.yml) runs the same commands.

GO ?= go

.PHONY: build vet test short race golden bench bench-gate bench-baseline parbench audit faults fuzz resume-smoke serve-smoke chaos-smoke netchaos-smoke sweep-smoke lint ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 30m ./...

# Fast subset: slow figure-shape tests skip themselves under -short.
short:
	$(GO) test -short -timeout 10m ./...

# Race coverage of the parallel harness. -short keeps the simulation-heavy
# shape tests out; the concurrency tests never skip.
race:
	$(GO) test -race -short -timeout 30m ./internal/experiments ./internal/sim ./internal/gc
	$(GO) test -race -timeout 30m -run 'Deterministic|Session|Parallel|Concurrent|KindTable' .

# Regenerate render golden files after an intentional format change.
golden:
	$(GO) test ./internal/experiments -run Golden -update

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Benchmark-regression gate: per-subsystem suite plus end-to-end RunAll,
# compared against the committed bench_baseline.txt. Fails on >10%
# geomean ns/op regression; writes BENCH.json. BENCH_SET=short for the
# CI smoke set (microbenchmarks only, no RunAll).
bench-gate:
	./scripts/bench_gate.sh

# Refresh bench_baseline.txt after an intentional perf change (commit it).
bench-baseline:
	BENCH_UPDATE=1 ./scripts/bench_gate.sh

# Invariant audit: vet plus the cross-component conservation and
# utilization-range checks (byte conservation between requesters and DRAM
# banks, utilization gauges in [0,1], unit-busy double accounting), plus a
# short fuzz pass over the public Config boundary.
audit:
	$(GO) vet ./...
	$(GO) test -timeout 10m -run 'Invariant|Conservation|Utilization|BusyNeverExceeds|PerUnitMetrics|RequesterBytes|ConfigValidate' ./internal/exec ./internal/charon ./internal/sim .
	$(GO) test -run FuzzConfigValidate -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) .

# Fuzz the public Config boundary (Validate must never panic, accepted
# configs must run cleanly) and the calendar ring (ring/spill accounting
# must match the retired map-scan reference on arbitrary reserve/query
# interleavings). FUZZTIME=10m fuzz for a longer soak.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run FuzzConfigValidate -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) .
	$(GO) test -run FuzzCalendarRingEquivalence -fuzz=FuzzCalendarRingEquivalence -fuzztime=$(FUZZTIME) ./internal/sim

# Crash-safety smoke: interrupt a checkpointed sweep with SIGINT, resume
# it, and diff against an uninterrupted golden run (see the script).
resume-smoke:
	./scripts/resume_smoke.sh

# Serving smoke: boot charond, run a job over HTTP, assert the report is
# byte-identical to the CLI's, assert resubmission is a cache hit, then
# SIGTERM and assert a clean drain (see the script). Needs curl + jq.
serve-smoke:
	./scripts/serve_smoke.sh

# Chaos smoke: kill -9 charond mid-job, restart over the same cache
# directory, and assert the journal replays the job to a byte-identical
# result with no completed unit re-executed (see the script). Needs
# curl + jq.
chaos-smoke:
	./scripts/chaos_smoke.sh

# Network-chaos smoke: put the seeded netfault proxy between charonctl
# and charond, drive submit → poll → result through injected resets,
# blackholes, latency, truncations and slowloris reads, and assert the
# report stays byte-identical to the CLI while the proxy's fault log and
# the client's retry counters reconcile (see the script). Needs jq.
netchaos-smoke:
	./scripts/netchaos_smoke.sh

# Sweep smoke: submit a parameter grid as one batch, kill -9 charond
# mid-sweep, restart, and assert the journaled manifest recovers the
# sweep under its original child ids, the combined report stays
# byte-identical to the concatenated CLI runs, and a duplicate sweep
# deduplicates without re-execution (see the script). Needs curl + jq.
sweep-smoke:
	./scripts/sweep_smoke.sh

# Serial-vs-parallel wall-time comparison (also verifies byte-identical
# output across parallelism settings).
parbench:
	$(GO) test -bench=BenchmarkSuiteSerialVsParallel -benchtime=1x -timeout 60m

# Fault-injection smoke: race-checked fault/degradation tests across every
# layer, then a real fault-sweep run that exports its metrics snapshot
# (CI uploads fault-metrics.json as a build artifact).
faults:
	$(GO) test -race -timeout 30m -run 'Fault|Failover|AllUnitsFailed|Degrad|Retry|BankRemap|Watchdog|Deadline' \
		./internal/fault ./internal/memsys ./internal/dram ./internal/hmc ./internal/charon ./internal/exec ./internal/experiments
	$(GO) run ./cmd/charonsim -exp faults -workloads BS -fault-seed 42 -fault-rate 0.01 -metrics fault-metrics.json

# Static analysis beyond vet. staticcheck is optional locally (the target
# skips with a notice when the binary is absent); CI installs it.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

ci: lint build test race audit faults resume-smoke serve-smoke chaos-smoke netchaos-smoke sweep-smoke
