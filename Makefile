# Developer entry points. Everything here is plain go tool invocations;
# CI (.github/workflows/ci.yml) runs the same commands.

GO ?= go

.PHONY: build vet test short race golden bench parbench audit ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 30m ./...

# Fast subset: slow figure-shape tests skip themselves under -short.
short:
	$(GO) test -short -timeout 10m ./...

# Race coverage of the parallel harness. -short keeps the simulation-heavy
# shape tests out; the concurrency tests never skip.
race:
	$(GO) test -race -short -timeout 30m ./internal/experiments ./internal/sim ./internal/gc
	$(GO) test -race -timeout 30m -run 'Deterministic|Session|Parallel|Concurrent|KindTable' .

# Regenerate render golden files after an intentional format change.
golden:
	$(GO) test ./internal/experiments -run Golden -update

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Invariant audit: vet plus the cross-component conservation and
# utilization-range checks (byte conservation between requesters and DRAM
# banks, utilization gauges in [0,1], unit-busy double accounting).
audit:
	$(GO) vet ./...
	$(GO) test -timeout 10m -run 'Invariant|Conservation|Utilization|BusyNeverExceeds|PerUnitMetrics|RequesterBytes|ConfigValidate' ./internal/exec ./internal/charon ./internal/sim .

# Serial-vs-parallel wall-time comparison (also verifies byte-identical
# output across parallelism settings).
parbench:
	$(GO) test -bench=BenchmarkSuiteSerialVsParallel -benchtime=1x -timeout 60m

ci: vet build test race audit
