package charonsim

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"charonsim/internal/exec"
)

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	want := []string{"ablations", "collectors", "faults", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig2", "fig4a", "fig4b", "table1", "table2", "table3", "table4", "thermal"}
	if len(ids) != len(want) {
		t.Fatalf("experiments = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunTable(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		rep, err := Run(id, Config{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id || rep.Title == "" || rep.Text == "" {
			t.Fatalf("%s: empty report %+v", id, rep)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFigureQuick(t *testing.T) {
	rep, err := Run("fig12", Config{Workloads: []string{"BS"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "BS") || !strings.Contains(rep.Text, "Charon") {
		t.Fatalf("report missing content:\n%s", rep.Text)
	}
}

func TestWorkloadsAndInfo(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 || ws[0] != "BS" || ws[5] != "ALS" {
		t.Fatalf("workloads %v", ws)
	}
	info, err := DescribeWorkload("CC")
	if err != nil {
		t.Fatal(err)
	}
	if info.Framework != "GraphChi" || info.PaperHeap != "4GB" || info.MinHeapBytes == 0 {
		t.Fatalf("info %+v", info)
	}
	if _, err := DescribeWorkload("XX"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSimulateGC(t *testing.T) {
	base, err := SimulateGC("BS", 1.5, PlatformDDR4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if base.MinorGCs == 0 || base.MajorGCs == 0 {
		t.Fatalf("GC counts %d/%d", base.MinorGCs, base.MajorGCs)
	}
	if base.TotalPause == 0 || base.MutatorTime == 0 || base.Overhead() <= 0 {
		t.Fatalf("times %+v", base)
	}
	if base.ReclaimedBytes == 0 || base.EnergyJoules <= 0 {
		t.Fatalf("stats %+v", base)
	}
	if base.PrimSeconds["Copy"] <= 0 {
		t.Fatal("no copy attribution")
	}

	ch, err := SimulateGC("BS", 1.5, PlatformCharon, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ch.TotalPause >= base.TotalPause {
		t.Fatalf("Charon pause %v not below DDR4 %v", ch.TotalPause, base.TotalPause)
	}
	if ch.LocalRatio <= 0 {
		t.Fatal("no locality on Charon")
	}
	if ch.Bandwidth <= base.Bandwidth {
		t.Fatal("Charon bandwidth should exceed DDR4's")
	}
}

func TestSimulateGCDefaults(t *testing.T) {
	st, err := SimulateGC("ALS", 0, PlatformIdeal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.HeapFactor != 1.5 || st.Threads != 8 {
		t.Fatalf("defaults not applied: %+v", st)
	}
}

func TestSimulateGCBadInputs(t *testing.T) {
	if _, err := SimulateGC("BS", 1.5, Platform("nope"), 8); err == nil {
		t.Fatal("bad platform accepted")
	}
	if _, err := SimulateGC("nope", 1.5, PlatformDDR4, 8); err == nil {
		t.Fatal("bad workload accepted")
	}
}

func TestPlatformKindTable(t *testing.T) {
	tests := []struct {
		platform Platform
		want     exec.Kind
		wantErr  bool
	}{
		{PlatformDDR4, exec.KindDDR4, false},
		{PlatformHMC, exec.KindHMC, false},
		{PlatformCharon, exec.KindCharon, false},
		{PlatformCharonDistributed, exec.KindCharonDistributed, false},
		{PlatformCharonCPUSide, exec.KindCharonCPUSide, false},
		{PlatformIdeal, exec.KindIdeal, false},
		{Platform("xpoint"), 0, true},
		{Platform(""), 0, true},
		{Platform("Charon"), 0, true}, // names are case-sensitive
	}
	for _, tc := range tests {
		got, err := tc.platform.kind()
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: expected an error, got kind %v", tc.platform, got)
			} else if !strings.Contains(err.Error(), string(tc.platform)) {
				t.Errorf("%q: error %v does not name the platform", tc.platform, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.platform, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q: kind = %v, want %v", tc.platform, got, tc.want)
		}
	}
	// The table above must cover every selectable platform.
	covered := map[Platform]bool{}
	for _, tc := range tests {
		covered[tc.platform] = true
	}
	for _, p := range Platforms() {
		if !covered[p] {
			t.Errorf("platform %q missing from the kind() table", p)
		}
	}
}

func TestPlatformsComplete(t *testing.T) {
	ps := Platforms()
	if len(ps) != 6 {
		t.Fatalf("platforms %v", ps)
	}
	for _, p := range ps {
		if _, err := p.kind(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestArea(t *testing.T) {
	a := Area()
	if a.TotalMM2 < 1.9 || a.TotalMM2 > 2.0 {
		t.Fatalf("area %+v", a)
	}
	if a.LogicLayerShare < 0.004 || a.LogicLayerShare > 0.006 {
		t.Fatalf("share %v", a.LogicLayerShare)
	}
}

func TestSimulateGCEvents(t *testing.T) {
	events, err := SimulateGCEvents("CC", 1.5, PlatformCharon, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	var total int64
	sawMajor := false
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Pause <= 0 {
			t.Fatalf("event %d has no pause", i)
		}
		if ev.Kind == "major" {
			sawMajor = true
		}
		total += int64(ev.Pause)
	}
	if !sawMajor {
		t.Fatal("no major GC in the log")
	}
	// Sum of per-event pauses equals the aggregate from SimulateGC.
	agg, err := SimulateGC("CC", 1.5, PlatformCharon, 8)
	if err != nil {
		t.Fatal(err)
	}
	diff := total - int64(agg.TotalPause)
	if diff < 0 {
		diff = -diff
	}
	// Per-event times truncate to nanoseconds individually.
	if diff > int64(len(events)) {
		t.Fatalf("per-event sum %d != aggregate %d", total, int64(agg.TotalPause))
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr string // substring; empty = valid
	}{
		{"zero value", Config{}, ""},
		{"explicit defaults", Config{Threads: 8, HeapFactor: 1.5, Parallelism: 0}, ""},
		{"serial sentinel", Config{Parallelism: -1}, ""},
		{"negative threads", Config{Threads: -1}, "Threads"},
		{"negative factor", Config{HeapFactor: -0.5}, "HeapFactor"},
		{"NaN factor", Config{HeapFactor: math.NaN()}, "HeapFactor"},
		{"Inf factor", Config{HeapFactor: math.Inf(1)}, "HeapFactor"},
		{"parallelism below sentinel", Config{Parallelism: -2}, "Parallelism"},
		{"unknown workload", Config{Workloads: []string{"BS", "nope"}}, "nope"},
		{"known workloads", Config{Workloads: []string{"BS", "CC"}}, ""},
		{"trace without metrics", Config{TracePath: "t.json"}, "MetricsPath"},
		{"trace with metrics", Config{MetricsPath: "m.json", TracePath: "t.json"}, ""},
		{"metrics alone", Config{MetricsPath: "m.csv"}, ""},
		{"trace csv extension", Config{MetricsPath: "m.json", TracePath: "t.csv"}, "JSON only"},
		{"trace csv uppercase", Config{MetricsPath: "m.json", TracePath: "t.CSV"}, "JSON only"},
		{"negative fault rate", Config{FaultRate: -0.1}, "FaultRate"},
		{"fault rate one", Config{FaultRate: 1.0}, "FaultRate"},
		{"NaN fault rate", Config{FaultRate: math.NaN()}, "FaultRate"},
		{"negative fault seed", Config{FaultSeed: -1}, "FaultSeed"},
		{"seed without faults", Config{FaultSeed: 7}, "zero"},
		{"seed with rate", Config{FaultRate: 0.01, FaultSeed: 7}, ""},
		{"seed with deadline", Config{FaultSeed: 7, OffloadDeadline: time.Microsecond}, ""},
		{"valid fault rate", Config{FaultRate: 0.05}, ""},
		{"negative offload deadline", Config{OffloadDeadline: -time.Millisecond}, "OffloadDeadline"},
		{"negative run timeout", Config{RunTimeout: -time.Second}, "RunTimeout"},
		{"run timeout alone", Config{RunTimeout: time.Minute}, ""},
	}
	for _, tc := range tests {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run("fig12", Config{Parallelism: -2}); err == nil {
		t.Fatal("Run accepted Parallelism=-2")
	}
	if _, err := RunAll(Config{Workloads: []string{"nope"}}); err == nil {
		t.Fatal("RunAll accepted an unknown workload")
	}
	if _, err := Run("table1", Config{TracePath: "t.json"}); err == nil {
		t.Fatal("Run accepted a trace request without a metrics path")
	}
	if _, err := SimulateGC("BS", math.NaN(), PlatformDDR4, 8); err == nil {
		t.Fatal("SimulateGC accepted a NaN heap factor")
	}
	if _, err := SimulateGC("BS", 1.5, PlatformDDR4, -3); err == nil {
		t.Fatal("SimulateGC accepted a negative thread count")
	}
	if _, err := SimulateGCEvents("BS", -1, PlatformDDR4, 8); err == nil {
		t.Fatal("SimulateGCEvents accepted a negative heap factor")
	}
}

func TestRunWritesMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workloads: []string{"BS"},
		MetricsPath: filepath.Join(dir, "metrics.json"),
		TracePath:   filepath.Join(dir, "trace.json")}
	rep, err := Run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Zero-cost invariant: the rendered report is byte-identical with
	// observability on and off.
	plain, err := Run("fig12", Config{Workloads: []string{"BS"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text != plain.Text {
		t.Fatal("enabling metrics changed Report.Text")
	}

	raw, err := os.ReadFile(cfg.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]float64 `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot is not JSON: %v", err)
	}
	for _, want := range []string{"trace/events", "charon/charon/offload_copy", "ddr4/sim/events"} {
		if _, ok := snap.Counters[want]; !ok {
			t.Errorf("snapshot missing counter %s", want)
		}
	}
	for name, v := range snap.Gauges {
		if strings.HasSuffix(name, "util") && (v < 0 || v > 1) {
			t.Errorf("gauge %s = %v outside [0,1]", name, v)
		}
	}

	traw, err := os.ReadFile(cfg.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traw, &tf); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
}

func TestRunWritesMetricsCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.csv")
	if _, err := Run("fig12", Config{Workloads: []string{"BS"}, MetricsPath: path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "name,kind,count,sum,min,mean,max" {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d CSV rows", len(lines))
	}
}

func TestRunMetricsPathUnwritable(t *testing.T) {
	cfg := Config{Workloads: []string{"BS"},
		MetricsPath: filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")}
	if _, err := Run("fig12", cfg); err == nil {
		t.Fatal("unwritable metrics path did not error")
	} else if !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("error %v does not name the metrics sink", err)
	}
}
