package charonsim

import "testing"

// TestRunAllDeterministicAcrossParallelism is the regression gate for all
// concurrency work in the experiment harness: the full RunAll suite —
// every experiment ID — must produce byte-identical Report.Text at
// parallelism 1 (forced serial) and parallelism 8. The suite runs over
// one workload to keep the gate fast; the six-workload comparison runs in
// BenchmarkSuiteSerialVsParallel (which b.Fatal's on divergence too).
//
// Under -race the gate shrinks to a representative experiment subset (the
// detector slows simulation ~10x); the concurrent machinery it exercises
// is identical.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	workloads := []string{"BS"}

	if raceEnabled {
		for _, id := range []string{"fig12", "table1", "table2", "table3", "table4"} {
			serial, err := Run(id, Config{Workloads: workloads, Parallelism: -1})
			if err != nil {
				t.Fatalf("%s serial: %v", id, err)
			}
			par, err := Run(id, Config{Workloads: workloads, Parallelism: 8})
			if err != nil {
				t.Fatalf("%s parallel: %v", id, err)
			}
			if serial.Text != par.Text {
				t.Errorf("%s: Report.Text differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial.Text, par.Text)
			}
		}
		return
	}

	serial, err := RunAll(Config{Workloads: workloads, Parallelism: -1})
	if err != nil {
		t.Fatalf("serial RunAll: %v", err)
	}
	par, err := RunAll(Config{Workloads: workloads, Parallelism: 8})
	if err != nil {
		t.Fatalf("parallel RunAll: %v", err)
	}
	if len(serial) != len(par) || len(serial) != len(Experiments()) {
		t.Fatalf("report counts: serial %d, parallel %d, experiments %d",
			len(serial), len(par), len(Experiments()))
	}
	for i := range serial {
		if serial[i].ID != par[i].ID {
			t.Fatalf("report %d: ID order differs (%s vs %s)", i, serial[i].ID, par[i].ID)
		}
		if serial[i].Text != par[i].Text {
			t.Errorf("%s: Report.Text differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].ID, serial[i].Text, par[i].Text)
		}
		if serial[i].Text == "" {
			t.Errorf("%s: empty report", serial[i].ID)
		}
	}
}
