package charonsim

import (
	"strings"
	"testing"
)

// TestRunAllDeterministicAcrossParallelism is the regression gate for all
// concurrency work in the experiment harness: the full RunAll suite —
// every experiment ID — must produce byte-identical Report.Text at
// parallelism 1 (forced serial) and parallelism 8. The suite runs over
// one workload to keep the gate fast; the six-workload comparison runs in
// BenchmarkSuiteSerialVsParallel (which b.Fatal's on divergence too).
//
// Under -race the gate shrinks to a representative experiment subset (the
// detector slows simulation ~10x); the concurrent machinery it exercises
// is identical.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	workloads := []string{"BS"}

	if raceEnabled {
		for _, id := range []string{"fig12", "table1", "table2", "table3", "table4"} {
			serial, err := Run(id, Config{Workloads: workloads, Parallelism: -1})
			if err != nil {
				t.Fatalf("%s serial: %v", id, err)
			}
			par, err := Run(id, Config{Workloads: workloads, Parallelism: 8})
			if err != nil {
				t.Fatalf("%s parallel: %v", id, err)
			}
			if serial.Text != par.Text {
				t.Errorf("%s: Report.Text differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial.Text, par.Text)
			}
		}
		return
	}

	serial, err := RunAll(Config{Workloads: workloads, Parallelism: -1})
	if err != nil {
		t.Fatalf("serial RunAll: %v", err)
	}
	par, err := RunAll(Config{Workloads: workloads, Parallelism: 8})
	if err != nil {
		t.Fatalf("parallel RunAll: %v", err)
	}
	if len(serial) != len(par) || len(serial) != len(Experiments()) {
		t.Fatalf("report counts: serial %d, parallel %d, experiments %d",
			len(serial), len(par), len(Experiments()))
	}
	for i := range serial {
		if serial[i].ID != par[i].ID {
			t.Fatalf("report %d: ID order differs (%s vs %s)", i, serial[i].ID, par[i].ID)
		}
		if serial[i].Text != par[i].Text {
			t.Errorf("%s: Report.Text differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].ID, serial[i].Text, par[i].Text)
		}
		if serial[i].Text == "" {
			t.Errorf("%s: empty report", serial[i].ID)
		}
	}
}

// TestFaultedRunDeterministicAcrossParallelism extends the determinism
// gate to fault injection: with a fixed FaultSeed the fault pattern is a
// pure function of (seed, component name, draw order), and every platform
// replays single-threaded, so Report.Text must stay byte-identical between
// forced-serial and parallelism-8 — and across repeated runs — even with
// faults rerouting and retiming the simulation. A different seed must
// change the faulted numbers (the injector really is drawing from the
// seed, not from shared state).
func TestFaultedRunDeterministicAcrossParallelism(t *testing.T) {
	base := Config{Workloads: []string{"BS"}, FaultRate: 0.05, FaultSeed: 11}

	run := func(par int, seed int64) string {
		cfg := base
		cfg.Parallelism = par
		cfg.FaultSeed = seed
		r, err := Run("faults", cfg)
		if err != nil {
			t.Fatalf("faults par=%d seed=%d: %v", par, seed, err)
		}
		return r.Text
	}

	serial := run(-1, 11)
	par := run(8, 11)
	if serial != par {
		t.Errorf("faulted Report.Text differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, par)
	}
	if again := run(8, 11); again != par {
		t.Error("repeated faulted run with the same seed diverged")
	}
	if other := run(8, 12); other == serial {
		t.Error("changing FaultSeed 11 -> 12 left the faulted report unchanged")
	}
	if !strings.Contains(serial, "all-failed") {
		t.Errorf("fault sweep render missing the all-failed column:\n%s", serial)
	}
}
