package charonsim

import (
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzConfigValidate hammers the public configuration boundary: for any
// input, Validate must return a decision — never panic — and any config
// it accepts must run a cheap experiment cleanly (no panic escaping the
// recovery boundary, no spurious error). This is the executable form of
// the API contract: validation is the only gate between user input and
// the simulation core's invariants.
func FuzzConfigValidate(f *testing.F) {
	// Seeds: the defaults, each boundary the validator guards, and a few
	// deliberately-hostile values.
	f.Add(0, 0.0, "", 0, 0.0, int64(0), int64(0), int64(0), "", 0, 0)
	f.Add(8, 1.5, "BS", 4, 0.0, int64(0), int64(0), int64(0), "", 0, 0)
	f.Add(-1, math.NaN(), "nope", -2, 1.5, int64(-1), int64(-1), int64(-1), "x.csv", -2, -2)
	f.Add(1, math.Inf(1), "BS,ALS", -1, 0.999, int64(7), int64(1e12), int64(1e9), "", -1, -1)
	f.Add(2, 1.25, "PR", 2, 0.01, int64(3), int64(0), int64(5e9), "ckpt", 100, 100)
	f.Fuzz(func(t *testing.T, threads int, factor float64, workloads string, parallel int,
		faultRate float64, faultSeed, deadlineNs, timeoutNs int64, ckptDir string, wdStalls, wdQueue int) {
		cfg := Config{
			Threads:         threads,
			HeapFactor:      factor,
			Parallelism:     parallel,
			FaultRate:       faultRate,
			FaultSeed:       faultSeed,
			OffloadDeadline: time.Duration(deadlineNs),
			RunTimeout:      time.Duration(timeoutNs),
			WatchdogStalls:  wdStalls,
			WatchdogQueue:   wdQueue,
		}
		if workloads != "" {
			cfg.Workloads = strings.Split(workloads, ",")
		}
		if ckptDir != "" {
			// Keep filesystem effects inside the test sandbox; an empty
			// component exercises the no-checkpoint path.
			cfg.CheckpointDir = t.TempDir()
		}
		err := cfg.Validate() // must decide, never panic
		if err != nil {
			return
		}
		// Accepted configs must execute. table4 touches no simulation but
		// still walks session construction (checkpoint store, watchdog
		// resolution, observability wiring) — the layers a bad accepted
		// config would break.
		if cfg.RunTimeout > 0 && cfg.RunTimeout < time.Second {
			// A microscopic accepted budget would (correctly) time the run
			// out; that's the budget working, not a validation gap.
			cfg.RunTimeout = 0
		}
		if _, rerr := Run("table4", cfg); rerr != nil {
			t.Fatalf("accepted config %+v failed to run: %v", cfg, rerr)
		}
	})
}
