//go:build race

package charonsim

// raceEnabled reports whether the race detector is compiled in. The
// determinism tests shrink their experiment set under -race: the detector
// slows simulation ~10x, and race coverage of the fan-out machinery does
// not need the full figure suite — only the concurrent paths exercised.
const raceEnabled = true
